//! End-to-end telemetry acceptance: a batch compile through the full
//! engine stack must produce a trace whose pass spans nest under their job
//! spans (via parent links) and whose cache event counts equal the
//! [`CacheStats`] counters of the same run — the trace and the report are
//! two views of one instrumentation stream, never two bookkeeping systems
//! that can drift.

use std::collections::HashMap;
use std::sync::Arc;

use ph_engine::{BatchEngine, Collector, CompileJob, Pipeline, Target, Telemetry};
use ph_telemetry::{Event, EventKind};
use workloads::suite;

/// Runs a small batch (with one duplicated job for a cache hit) against a
/// live collector and returns the collector plus the engine's counters.
fn run_batch() -> (Arc<Collector>, ph_engine::CacheStats) {
    let ir_a = suite::generate("Ising-1D").ir;
    let ir_b = suite::generate("Heisen-1D").ir;
    let jobs = vec![
        CompileJob::named("a", ir_a.clone()),
        CompileJob::named("b", ir_b),
        CompileJob::named("a-again", ir_a), // identical → cache hit
    ];
    let collector = Arc::new(Collector::new());
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant)
        .with_threads(1) // deterministic hit pattern
        .with_telemetry(Telemetry::attached(Arc::clone(&collector)));
    let results = engine.compile_all(jobs);
    assert!(results.iter().all(|r| r.outcome.is_ok()));
    let stats = engine.engine().cache_stats();
    (collector, stats)
}

/// Follows `parent` links from `event` up to a root, returning the span
/// names on the way (nearest ancestor first).
fn ancestry(event: &Event, begins: &HashMap<u64, &Event>) -> Vec<String> {
    let mut chain = Vec::new();
    let mut parent = event.parent;
    while let Some(id) = parent {
        let p = begins
            .get(&id)
            .unwrap_or_else(|| panic!("{}: dangling parent id {id}", event.name));
        chain.push(p.name.to_string());
        parent = p.parent;
    }
    chain
}

#[test]
fn pass_spans_nest_under_their_job_spans() {
    let (collector, _) = run_batch();
    let events = collector.events();
    let begins: HashMap<u64, &Event> = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin)
        .map(|e| (e.id, e))
        .collect();

    // Every pass span sits inside pipeline → compile → job:<name>.
    let mut passes_seen = 0;
    for e in events.iter().filter(|e| e.kind == EventKind::Begin) {
        if !matches!(&*e.name, "schedule" | "synthesis" | "peephole") {
            continue;
        }
        passes_seen += 1;
        let chain = ancestry(e, &begins);
        assert_eq!(chain[0], "pipeline", "{}: {:?}", e.name, chain);
        assert_eq!(chain[1], "compile", "{}: {:?}", e.name, chain);
        assert!(
            chain[2].starts_with("job:"),
            "{}: expected a job span above compile, got {:?}",
            e.name,
            chain
        );
    }
    // Three passes for each of the two real compiles; the cache hit runs
    // no pipeline.
    assert_eq!(passes_seen, 6);

    // Every begin has a matching end, and spans that nest share a thread.
    let mut ends: HashMap<u64, u64> = HashMap::new();
    for e in events.iter().filter(|e| e.kind == EventKind::End) {
        ends.insert(e.id, e.tid);
    }
    for (id, b) in &begins {
        let end_tid = ends
            .get(id)
            .unwrap_or_else(|| panic!("span {} never ended", b.name));
        assert_eq!(*end_tid, b.tid, "{}: span migrated threads", b.name);
        if let Some(pid) = b.parent {
            assert_eq!(
                begins[&pid].tid, b.tid,
                "{}: parent on other thread",
                b.name
            );
        }
    }
}

#[test]
fn cache_event_counts_equal_cache_stats_counters() {
    let (collector, stats) = run_batch();
    let events = collector.events();
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e.kind == EventKind::Instant && e.name == name)
            .count() as u64
    };

    // The trace's instant events and the engine's counters are the same
    // measurements: one `mark()` per counter bump.
    assert_eq!(count("cache.hit"), stats.hits);
    assert_eq!(count("cache.miss"), stats.misses);
    assert_eq!(count("cache.disk_read"), stats.disk_hits);
    assert_eq!(count("cache.coalesce"), stats.coalesced);
    assert_eq!(count("cache.eviction"), stats.evictions);
    // This run definitely hit and missed.
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 2);

    // The metric counters agree with the instants, too (mark() bumps both
    // in lockstep).
    let metrics = collector.metrics();
    assert_eq!(metrics.counter("cache.hit"), stats.hits);
    assert_eq!(metrics.counter("cache.miss"), stats.misses);
}

#[test]
fn chrome_trace_export_is_well_formed_for_a_real_batch() {
    let (collector, _) = run_batch();
    let trace = ph_telemetry::export::chrome_trace(&collector);
    // Structural sanity without a JSON parser: the envelope, balanced
    // B/E phases, and at least one job + pass span by name.
    assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
    assert!(trace.contains("\"traceEvents\""));
    assert_eq!(
        trace.matches("\"ph\": \"B\"").count(),
        trace.matches("\"ph\": \"E\"").count(),
        "unbalanced begin/end events"
    );
    assert!(trace.contains("\"name\": \"job:a\""));
    assert!(trace.contains("\"name\": \"synthesis\""));
    assert!(trace.contains("\"name\": \"cache.hit\""));
}
