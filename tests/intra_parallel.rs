//! Bit-identity acceptance tests for intra-compile parallelism: the
//! `intra_threads` knob may only change wall time, never the artifact.
//! Every parallel reduction in the synthesis passes replicates the
//! sequential tie-breaking exactly, so `compile` with any worker budget
//! must produce byte-for-byte the same circuit, emission order, and
//! layouts as the sequential path — across random programs, every Table 1
//! benchmark, and the 100/1000-qubit scale lattices.

use pauli::{Pauli, PauliString, PauliTerm};
use paulihedral::ir::{Parameter, PauliBlock, PauliIR};
use paulihedral::{compile, Backend, CompileOptions, Compiled, Scheduler};
use proptest::prelude::*;
use qdevice::devices;
use workloads::suite::{self, BackendClass};
use workloads::{scale, spin};

/// Worker budgets swept against the sequential reference.
const BUDGETS: [usize; 2] = [2, 8];

fn assert_identical(name: &str, seq: &Compiled, par: &Compiled, intra: usize) {
    assert_eq!(
        seq.circuit, par.circuit,
        "{name}: circuit differs at intra_threads={intra}"
    );
    assert_eq!(
        seq.emitted, par.emitted,
        "{name}: emission order differs at intra_threads={intra}"
    );
    assert_eq!(seq.initial_l2p, par.initial_l2p, "{name}: initial layout");
    assert_eq!(seq.final_l2p, par.final_l2p, "{name}: final layout");
}

fn check_all_budgets(name: &str, ir: &PauliIR, scheduler: Scheduler, backend: Backend<'_>) {
    let seq = compile(ir, &CompileOptions::new(scheduler, backend));
    for intra in BUDGETS {
        let par = compile(
            ir,
            &CompileOptions::new(scheduler, backend).with_intra_threads(intra),
        );
        assert_identical(name, &seq, &par, intra);
    }
}

/// A deterministic random program: `blocks` blocks of 1–3 terms, each a
/// weight-1..=6 string over `n` qubits. Seeded LCG so proptest shrinking
/// and replays stay reproducible.
fn ir_from_seed(seed: u64, n: usize, blocks: usize) -> PauliIR {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut next = move |bound: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound.max(1)
    };
    let mut ir = PauliIR::new(n);
    for b in 0..blocks {
        let terms: Vec<PauliTerm> = (0..1 + next(3))
            .map(|_| {
                let mut s = PauliString::identity(n);
                for _ in 0..1 + next(6) {
                    let p = [Pauli::X, Pauli::Y, Pauli::Z][next(3)];
                    s.set(next(n), p);
                }
                PauliTerm::new(s, 0.25 + next(8) as f64 * 0.1)
            })
            .collect();
        ir.push_block(PauliBlock::new(
            terms,
            Parameter::time(0.05 + (b % 7) as f64 * 0.04),
        ));
    }
    ir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_ft_compile_matches_sequential_on_random_irs(
        seed in 0u64..1 << 32,
        depth_sched in any::<bool>(),
    ) {
        let ir = ir_from_seed(seed, 48, 180);
        let scheduler = if depth_sched { Scheduler::Depth } else { Scheduler::GateCount };
        check_all_budgets("random-ft", &ir, scheduler, Backend::FaultTolerant);
    }

    #[test]
    fn parallel_sc_compile_matches_sequential_on_random_irs(seed in 0u64..1 << 32) {
        let ir = ir_from_seed(seed, 24, 60);
        let device = devices::linear(24);
        check_all_budgets(
            "random-sc",
            &ir,
            Scheduler::Depth,
            Backend::Superconducting { device: &device, noise: None },
        );
    }
}

#[test]
fn parallel_compile_is_bit_identical_on_all_31_benchmarks() {
    let device = devices::manhattan_65();
    for name in suite::all_names() {
        let b = suite::generate(name);
        match b.class {
            BackendClass::Superconducting => check_all_budgets(
                name,
                &b.ir,
                Scheduler::Depth,
                Backend::Superconducting {
                    device: &device,
                    noise: None,
                },
            ),
            BackendClass::FaultTolerant => {
                check_all_budgets(name, &b.ir, Scheduler::Auto, Backend::FaultTolerant);
            }
        }
    }
}

#[test]
fn parallel_compile_is_bit_identical_at_scale() {
    for name in ["Heisen-100", "Ising-1000"] {
        let ir = scale::named_scale_ir(name).expect("preset scale name");
        check_all_budgets(name, &ir, Scheduler::Auto, Backend::FaultTolerant);
    }
    // A scale SC row too: a 100-qubit chain routed on a 100-qubit line.
    let ir = spin::heisenberg_ir(&[100], 1.0, 0.1);
    let device = devices::linear(100);
    check_all_budgets(
        "Heisen-100-sc",
        &ir,
        Scheduler::Depth,
        Backend::Superconducting {
            device: &device,
            noise: None,
        },
    );
}

#[test]
fn intra_zero_resolves_to_machine_and_stays_identical() {
    let ir = scale::named_scale_ir("Heisen-100").expect("preset scale name");
    let seq = compile(
        &ir,
        &CompileOptions::new(Scheduler::Auto, Backend::FaultTolerant),
    );
    let auto = compile(
        &ir,
        &CompileOptions::new(Scheduler::Auto, Backend::FaultTolerant).with_intra_threads(0),
    );
    assert_identical("Heisen-100", &seq, &auto, 0);
}
