//! Property tests on the wire formats: the JSON parser and the request
//! decoder must never panic — truncated, mutated, or outright random
//! input produces a typed error with an in-bounds byte offset, and valid
//! requests round-trip bit-exactly. This is the client/server trust
//! boundary: a server must survive any line a broken or malicious peer
//! can send, and a client must survive a fault-truncated response.

use paulihedral::Scheduler;
use ph_engine::json::Json;
use ph_engine::proto::{CompileRequest, Request};
use proptest::prelude::*;

/// Strings that stress the JSON escaper: printable ASCII (quotes and
/// backslashes included), control characters, and multi-byte UTF-8.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        (0u32..100).prop_map(|c| match c {
            0..=94 => char::from_u32(c + 32).unwrap(), // ' '..'~', with " and \
            95 => '\n',
            96 => '\t',
            97 => 'é',
            98 => '→',
            _ => '🦀',
        }),
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Any syntactically valid compile request, options toggled independently.
fn arb_request() -> impl Strategy<Value = CompileRequest> {
    (
        (any::<u64>(), arb_text(), any::<bool>()),
        (arb_text(), 0u64..10_000, any::<bool>(), 0u8..4),
    )
        .prop_map(
            |((id, name, has_name), (ir, deadline, artifact, sched))| CompileRequest {
                id,
                name: has_name.then_some(name),
                ir,
                backend: (sched == 3).then(|| "manhattan".to_string()),
                scheduler: match sched {
                    0 => None,
                    1 => Some(Scheduler::GateCount),
                    2 => Some(Scheduler::Depth),
                    _ => Some(Scheduler::Auto),
                },
                deadline_ms: (deadline > 0).then_some(deadline),
                artifact,
            },
        )
}

/// A valid request line plus a byte position inside it.
fn arb_line_and_pos() -> impl Strategy<Value = (String, usize)> {
    arb_request().prop_flat_map(|req| {
        let line = Request::Compile(req).to_line().trim_end().to_string();
        let len = line.len();
        (Just(line), 0..len)
    })
}

proptest! {
    // Escaping is lossless: every request survives the wire verbatim,
    // whatever its strings contain.
    #[test]
    fn valid_requests_round_trip_bit_exactly(req in arb_request()) {
        let wire = Request::Compile(req.clone());
        let line = wire.to_line();
        prop_assert!(line.ends_with('\n'));
        prop_assert_eq!(Request::from_line(line.trim_end()), Ok(wire));
    }

    // A response or request cut off mid-line (a torn write, a dropped
    // connection) decodes to an error, never a panic — and the JSON
    // parser's reported offset stays inside the input.
    #[test]
    fn truncated_requests_error_with_in_bounds_offsets(cut_line in arb_line_and_pos()) {
        let (line, cut) = cut_line;
        let bytes = &line.as_bytes()[..cut];
        let truncated = String::from_utf8_lossy(bytes);
        if let Err(message) = Request::from_line(&truncated) {
            prop_assert!(!message.is_empty());
        }
        if let Err(e) = Json::parse(&truncated) {
            prop_assert!(
                e.offset <= truncated.len(),
                "offset {} out of bounds for len {}",
                e.offset,
                truncated.len()
            );
        }
    }

    // One flipped byte anywhere in a valid line (a bit-flip fault, a
    // corrupted buffer) is decoded or rejected — never a panic.
    #[test]
    fn mutated_requests_never_panic(
        flip_line in arb_line_and_pos(),
        flip in any::<u8>(),
    ) {
        let (line, pos) = flip_line;
        let mut bytes = line.into_bytes();
        bytes[pos] ^= flip | 1; // always a real change
        let mutated = String::from_utf8_lossy(&bytes);
        let _ = Request::from_line(&mutated);
        if let Err(e) = Json::parse(&mutated) {
            prop_assert!(e.offset <= mutated.len());
        }
    }

    // Entirely arbitrary bytes: the parser terminates with either a
    // value or an offset-carrying error.
    #[test]
    fn random_bytes_never_panic_the_parser(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let input = String::from_utf8_lossy(&bytes);
        if let Err(e) = Json::parse(&input) {
            prop_assert!(e.offset <= input.len());
        }
    }
}
