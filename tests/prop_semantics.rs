//! Property-based semantics tests: for *arbitrary* random Pauli IR
//! programs, every compilation path must implement the exact operator
//! product of its emission order. These are the strongest correctness
//! guarantees in the repository — they exercise scheduling, chain
//! alignment, SC routing, layout tracking, the peephole optimizer, fusion,
//! and the TK tableau signs all at once.

use baselines::generic::{self, Mapping};
use baselines::tk;
use pauli::{Pauli, PauliString, PauliTerm};
use paulihedral::ir::{Parameter, PauliBlock, PauliIR};
use paulihedral::{compile, Backend, CompileOptions, Scheduler};
use proptest::prelude::*;
use qdevice::devices;
use qsim::trotter::exp_product;
use qsim::unitary::{circuit_unitary, equal_up_to_phase, routed_circuit_implements};

const N: usize = 4;

fn arb_string() -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(0u8..4, N).prop_map(|ops| {
        let mut s = PauliString::identity(N);
        let mut any = false;
        for (q, &o) in ops.iter().enumerate() {
            let p = match o {
                1 => Pauli::X,
                2 => Pauli::Y,
                3 => Pauli::Z,
                _ => Pauli::I,
            };
            if p != Pauli::I {
                any = true;
            }
            s.set(q, p);
        }
        if !any {
            s.set(0, Pauli::Z);
        }
        s
    })
}

fn arb_block() -> impl Strategy<Value = PauliBlock> {
    (
        proptest::collection::vec((arb_string(), -1.0f64..1.0), 1..4),
        -0.8f64..0.8,
    )
        .prop_map(|(terms, param)| {
            let terms = terms
                .into_iter()
                .map(|(s, w)| PauliTerm::new(s, if w == 0.0 { 0.25 } else { w }))
                .collect();
            PauliBlock::new(
                terms,
                Parameter::time(if param == 0.0 { 0.3 } else { param }),
            )
        })
}

fn arb_program() -> impl Strategy<Value = PauliIR> {
    proptest::collection::vec(arb_block(), 1..5).prop_map(|blocks| {
        let mut ir = PauliIR::new(N);
        for b in blocks {
            ir.push_block(b);
        }
        ir
    })
}

fn expected(ir: &PauliIR, emitted: &[(PauliString, f64)]) -> qsim::unitary::Columns {
    let want = ir
        .blocks()
        .iter()
        .flat_map(|b| &b.terms)
        .filter(|t| !t.string.is_identity())
        .count();
    assert_eq!(emitted.len(), want);
    exp_product(N, emitted.iter().map(|(s, t)| (s, *t)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ft_compilation_is_exact(ir in arb_program(), depth_sched in any::<bool>()) {
        let scheduler = if depth_sched { Scheduler::Depth } else { Scheduler::GateCount };
        let out = compile(&ir, &CompileOptions { intra_threads: 1, scheduler, backend: Backend::FaultTolerant });
        let exp = expected(&ir, &out.emitted);
        prop_assert!(equal_up_to_phase(&circuit_unitary(&out.circuit), &exp, 1e-8));
    }

    #[test]
    fn ft_plus_generic_cleanup_is_exact(ir in arb_program()) {
        let out = compile(
            &ir,
            &CompileOptions { intra_threads: 1, scheduler: Scheduler::GateCount, backend: Backend::FaultTolerant },
        );
        let exp = expected(&ir, &out.emitted);
        let l3 = generic::qiskit_l3_like(&out.circuit, Mapping::None);
        prop_assert!(equal_up_to_phase(&circuit_unitary(&l3.circuit), &exp, 1e-8));
        let o2 = generic::tket_o2_like(&out.circuit, Mapping::None);
        prop_assert!(equal_up_to_phase(&circuit_unitary(&o2.circuit), &exp, 1e-8));
    }

    #[test]
    fn sc_compilation_is_exact_on_a_line(ir in arb_program()) {
        let device = devices::linear(5);
        let out = compile(
            &ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::Superconducting { device: &device, noise: None },
            },
        );
        prop_assert!(out.circuit.respects_connectivity(|a, b| device.has_edge(a, b)));
        let exp = expected(&ir, &out.emitted);
        prop_assert!(routed_circuit_implements(
            &out.circuit,
            &exp,
            out.initial_l2p.as_ref().unwrap(),
            out.final_l2p.as_ref().unwrap(),
            1e-8,
        ));
    }

    #[test]
    fn tk_baseline_is_exact(ir in arb_program()) {
        let r = tk::compile_tk(&ir);
        let exp = expected(&ir, &r.emitted);
        prop_assert!(equal_up_to_phase(&circuit_unitary(&r.circuit), &exp, 1e-8));
    }
}
